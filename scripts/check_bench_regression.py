#!/usr/bin/env python3
"""Compare a freshly produced BENCH_*.json against the checked-in one.

Usage: check_bench_regression.py <checked-in.json> <fresh.json> [...]

Absolute throughput numbers are host-dependent, so CI compares the
*within-run* figures instead:

  * every "speedup" field (optimized vs. legacy implementation measured in
    the same process seconds apart) must not regress by more than
    REGRESSION_TOLERANCE against the checked-in value;
  * every "*allocs*" field that is (near-)zero in the checked-in file must
    stay (near-)zero — the zero-steady-state-allocation property is exact,
    not statistical.

The "sim" section's speedup is measured against a baseline pinned on the
recording host, so on other hosts it is informational; pass --strict-sim
to enforce it too (used when regenerating the checked-in files).

Speedup leaves whose enclosing section records "host_cores" <= 1 on either
side compare multi-threaded shard configurations measured without host
parallelism (pure synchronization overhead, see micro_pdes.cpp); those
columns are informational, never enforced. Serial-vs-serial ratios (e.g.
micro_trace's replay-vs-fiber speedup) carry host_cores only as
provenance — their sections do not gate on it (HOST_GATED_SECTIONS).
"""

import json
import sys

REGRESSION_TOLERANCE = 0.30  # fail on >30% drop of any speedup ratio
ZERO_ALLOCS = 0.001          # "zero" allowing for one-off warmup noise

# Sections a bench must emit: their "speedup" / "*allocs*" leaves are what
# the rules above gate, so silently dropping the section (e.g. by
# regenerating the JSON with an older binary) must itself be a failure.
REQUIRED_SECTIONS = {
    "micro_memsys": ("sim", "hier", "container"),
    "micro_pdes": ("pdes",),
    "micro_trace": ("trace",),
}

# Absolute floors on top of the relative tolerance: the trace front end's
# whole point is that fiber-free replay beats fiber-mode throughput, so the
# replay-vs-fiber ratio may never fall under 1.10 regardless of what the
# checked-in file says.
SPEEDUP_HARD_FLOORS = {
    "micro_trace.trace.speedup": 1.10,
}

# Sections whose speedups are real-parallelism measurements: enforced only
# when both the checked-in and the fresh file were recorded with free host
# cores. The trace section is deliberately absent — replay vs fiber are
# both serial, so the ratio holds on any host.
HOST_GATED_SECTIONS = ("pdes",)


def host_limited(path, ref_cores, new_cores):
    gated = any(f".{s}." in path or path.endswith(f".{s}")
                for s in HOST_GATED_SECTIONS)
    return gated and (ref_cores is not None and ref_cores <= 1
                      or new_cores is not None and new_cores <= 1)


def walk(ref, new, path, failures, strict_sim,
         ref_cores=None, new_cores=None):
    if isinstance(ref, dict):
        if not isinstance(new, dict):
            failures.append(f"{path}: shape mismatch")
            return
        # A section's host_cores applies to every leaf beneath it.
        ref_cores = ref.get("host_cores", ref_cores)
        new_cores = new.get("host_cores", new_cores)
        for key, ref_val in ref.items():
            if key not in new:
                failures.append(f"{path}.{key}: missing from fresh output")
                continue
            walk(ref_val, new[key], f"{path}.{key}", failures, strict_sim,
                 ref_cores, new_cores)
        return
    if not isinstance(ref, (int, float)) or isinstance(ref, bool):
        return
    leaf = path.rsplit(".", 1)[-1]
    if leaf == "speedup":
        if ".sim." in path and not strict_sim:
            print(f"  info {path}: {new:.2f} (checked-in {ref:.2f}, "
                  "baseline is host-pinned; not enforced)")
            return
        if host_limited(path, ref_cores, new_cores):
            print(f"  info {path}: {new:.2f} (checked-in {ref:.2f}, "
                  "measured at host_cores <= 1; not enforced)")
            return
        floor = max(ref * (1.0 - REGRESSION_TOLERANCE),
                    SPEEDUP_HARD_FLOORS.get(path, 0.0))
        status = "ok" if new >= floor else "FAIL"
        print(f"  {status} {path}: {new:.2f} vs checked-in {ref:.2f} "
              f"(floor {floor:.2f})")
        if new < floor:
            failures.append(f"{path}: {new:.2f} < floor {floor:.2f}")
    elif "allocs" in leaf and ref <= ZERO_ALLOCS:
        status = "ok" if new <= ZERO_ALLOCS else "FAIL"
        print(f"  {status} {path}: {new:.4f} (must stay <= {ZERO_ALLOCS})")
        if new > ZERO_ALLOCS:
            failures.append(f"{path}: {new:.4f} allocations, expected zero")


def main(argv):
    args = [a for a in argv[1:] if a != "--strict-sim"]
    strict_sim = "--strict-sim" in argv[1:]
    if len(args) < 2 or len(args) % 2 != 0:
        print(__doc__)
        return 2
    failures = []
    for ref_path, new_path in zip(args[0::2], args[1::2]):
        with open(ref_path) as f:
            # The bench writers append a trailing comment line; strip it.
            ref = json.loads("".join(l for l in f if not l.startswith("//")))
        with open(new_path) as f:
            new = json.loads("".join(l for l in f if not l.startswith("//")))
        name = ref.get("bench", ref_path)
        if ref.get("bench") != new.get("bench"):
            failures.append(f"{ref_path} vs {new_path}: different benches")
            continue
        print(f"{name}:")
        for section in REQUIRED_SECTIONS.get(name, ()):
            for side, data in (("checked-in", ref), ("fresh", new)):
                if section not in data:
                    failures.append(
                        f"{name}.{section}: required section missing from "
                        f"{side} output")
        walk(ref, new, name, failures, strict_sim)
    if failures:
        print("bench regression: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("bench regression: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
