#!/usr/bin/env python3
"""CI driver for the layer-0 static checks (docs/STATIC.md).

Default pipeline (all gating):
  1. Extract the protocol model (tools/proto_model.py pass 1) — fails on
     exhaustiveness / dead-case / stale-annotation findings.
  2. Compare each family against its golden snapshot under
     tests/static/golden/ (regenerate with --update).
  3. Cross-validate the model against docs/PROTOCOL.md's tables.
  4. Determinism lint (pass 2) over src/ — fails on any unannotated finding.
  5. Static-vs-dynamic coverage report against --observed (informational,
     never fails the run; the file is produced by LRCSIM_CHECK litmus runs
     with LRCSIM_TRANSITION_LOG set — see docs/STATIC.md).

--self-test proves the analyzer can actually catch what it claims to:
  * every fixture under tests/static/fixtures/ must produce exactly the
    findings its `// EXPECT: <rule>` markers announce, and the _ok_
    fixtures must produce none;
  * a mutation test: a copy of the tree with a `case` deleted from
    src/proto/lrc.cpp, and another with the MSI default annotation stripped,
    must both fail extraction.

Run from anywhere:  python3 scripts/run_static_checks.py [--repo ROOT]
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import proto_model  # noqa: E402

GOLDEN_DIR_REL = Path("tests/static/golden")
FIXTURE_DIR_REL = Path("tests/static/fixtures")
EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


def _print_findings(findings, prefix="  "):
    for f in findings:
        loc = f.get("file", "")
        if f.get("line"):
            loc += f":{f['line']}"
        print(f"{prefix}{loc + ': ' if loc else ''}[{f['rule']}] {f['msg']}")


def run_extract(repo: Path, out: Path, backend: str):
    model, findings = proto_model.build_protocol_model(repo, backend)
    gating = proto_model.gating(findings)
    if findings:
        _print_findings(findings)
    if model:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(model, indent=1) + "\n")
    return model, len(gating) == 0


def check_goldens(repo: Path, model: dict, update: bool) -> bool:
    golden_dir = repo / GOLDEN_DIR_REL
    ok = True
    for fam, data in sorted(model["families"].items()):
        path = golden_dir / f"proto_model_{fam}.json"
        text = json.dumps(data, indent=1, sort_keys=True) + "\n"
        if update:
            golden_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            print(f"  updated {path.relative_to(repo)}")
            continue
        if not path.is_file():
            print(f"  MISSING golden {path.relative_to(repo)} "
                  "(run with --update)")
            ok = False
            continue
        if path.read_text() != text:
            old = json.loads(path.read_text())
            for key in sorted(set(old) | set(data)):
                if old.get(key) != data.get(key):
                    print(f"  {fam}: '{key}' drifted from golden")
            print(f"  golden mismatch for {fam} — the protocol model "
                  "changed; review and run with --update")
            ok = False
    return ok


def run_docs(repo: Path, model: dict) -> bool:
    findings = proto_model.check_docs(repo, model)
    _print_findings(findings)
    return not findings


def run_lint(repo: Path) -> bool:
    findings = proto_model.lint_tree(repo)
    _print_findings(findings)
    print(f"  determinism lint: {len(findings)} finding(s)")
    return not findings


def run_coverage(repo: Path, model: dict, observed: Path | None) -> None:
    if observed is None or not observed.is_file():
        print("  (no observed-transition log; pass --observed or see "
              "docs/STATIC.md — skipping)")
        return
    gaps = proto_model.coverage_report(model, observed)
    if not gaps:
        print("  every declared transition was exercised by the corpus")
    for g in gaps:
        print(f"  gap: {g}")
    print(f"  coverage: {len(gaps)} declared-but-unexercised item(s) "
          "(informational)")


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def expected_findings(path: Path) -> set[tuple[str, int]]:
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = EXPECT_RE.search(line)
        if m:
            for rule in re.split(r"\s*,\s*", m.group(1)):
                out.add((rule, lineno))
    return out


def self_test_fixtures(repo: Path) -> bool:
    fdir = repo / FIXTURE_DIR_REL
    ok = True
    for path in sorted(fdir.glob("*.cpp")):
        if "det" in path.name:
            found = proto_model.lint_file(path, path.name)
        else:
            found = proto_model.audit_fixture(path)
        got = {(f["rule"], f.get("line", 0)) for f in found}
        want = expected_findings(path)
        if got == want:
            print(f"  {path.name}: OK ({len(want)} expected finding(s))")
            continue
        ok = False
        print(f"  {path.name}: FAIL")
        for rule, line in sorted(want - got):
            print(f"    missing expected finding [{rule}] at line {line}")
        for rule, line in sorted(got - want):
            print(f"    unexpected finding [{rule}] at line {line}")
    return ok


MUTATION_COPY = ("src/proto", "src/mesh/message.hpp", "src/check/checker.hpp",
                 "src/sim/event.hpp", "src/core/params.hpp")


def _mutated_tree(repo: Path, tmp: Path) -> Path:
    for spec in MUTATION_COPY:
        src, dst = repo / spec, tmp / spec
        dst.parent.mkdir(parents=True, exist_ok=True)
        if src.is_dir():
            shutil.copytree(src, dst)
        else:
            shutil.copy(src, dst)
    return tmp


def self_test_mutations(repo: Path) -> bool:
    ok = True

    def expect_fail(label: str, edit) -> bool:
        with tempfile.TemporaryDirectory() as d:
            tree = _mutated_tree(repo, Path(d))
            edit(tree)
            _, findings = proto_model.build_protocol_model(tree, "tokens")
            gating = proto_model.gating(findings)
            if gating:
                print(f"  mutation '{label}': caught "
                      f"({gating[0]['rule']}: {gating[0]['msg'][:70]}...)")
                return True
            print(f"  mutation '{label}': NOT CAUGHT — the static gate "
                  "is broken")
            return False

    def drop_case(tree: Path):
        f = tree / "src/proto/lrc.cpp"
        text = f.read_text()
        needle = ("    case MsgKind::kNoticeAck:\n"
                  "      return home_notice_ack(msg, start);\n")
        assert needle in text, "mutation target moved; update self-test"
        f.write_text(text.replace(needle, ""))

    def drop_annotation(tree: Path):
        f = tree / "src/proto/msi.cpp"
        lines = f.read_text().splitlines(keepends=True)
        out = [ln for ln in lines
               if "proto-lint" not in ln and not ln.lstrip().startswith(
                   "//   k") and "LRC-family multiple-writer" not in ln]
        assert len(out) < len(lines), "annotation target moved"
        f.write_text("".join(out))

    ok &= expect_fail("delete case kNoticeAck from lrc.cpp", drop_case)
    ok &= expect_fail("strip proto-lint annotations from msi.cpp",
                      drop_annotation)
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", type=Path, default=ROOT)
    ap.add_argument("--backend", choices=["auto", "tokens", "libclang"],
                    default="tokens")
    ap.add_argument("--out", type=Path, default=None,
                    help="proto_model.json destination "
                         "(default <repo>/build/proto_model.json)")
    ap.add_argument("--observed", type=Path, default=None,
                    help="observed-transition log for the coverage report "
                         "(default tests/static/observed_transitions.txt)")
    ap.add_argument("--update", action="store_true",
                    help="regenerate the golden snapshots")
    ap.add_argument("--self-test", action="store_true",
                    help="run fixture + mutation self-tests instead")
    args = ap.parse_args()
    repo = args.repo.resolve()

    if args.self_test:
        print("== fixture self-test ==")
        a = self_test_fixtures(repo)
        print("== mutation self-test ==")
        b = self_test_mutations(repo)
        print("static self-test:", "OK" if a and b else "FAILED")
        return 0 if a and b else 1

    out = args.out or repo / "build" / "proto_model.json"
    observed = args.observed
    if observed is None:
        default_obs = repo / "tests" / "static" / "observed_transitions.txt"
        observed = default_obs if default_obs.is_file() else None

    ok = True
    print("== pass 1: protocol-model extraction ==")
    model, good = run_extract(repo, out, args.backend)
    ok &= good
    if not model:
        print("static checks: FAILED (no model)")
        return 1
    print(f"  {len(model['families'])} families -> {out}")
    print("== golden snapshots ==")
    ok &= check_goldens(repo, model, args.update)
    print("== docs/PROTOCOL.md cross-validation ==")
    ok &= run_docs(repo, model)
    print("== pass 2: determinism lint ==")
    ok &= run_lint(repo)
    print("== static-vs-dynamic coverage (informational) ==")
    run_coverage(repo, model, observed)
    print("static checks:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
