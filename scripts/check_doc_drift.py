#!/usr/bin/env python3
"""Fail when docs/PROTOCOL.md and the protocol sources drift apart.

Checks, in both directions:

  1. Every DirState member (src/proto/directory.hpp), MsgKind member
     (src/mesh/message.hpp), and kTag* constant (src/proto/*.{hpp,cpp})
     must be mentioned in docs/PROTOCOL.md.
  2. Every `kSomething` token used in docs/PROTOCOL.md must exist in the
     union of those code-side names — a renamed or deleted state/message
     makes the doc reference fail here.
  3. Every `src/<path>:<line>` anchor in docs/PROTOCOL.md must point at an
     existing file, and when the anchor names a symbol — the form is
     `src/foo.cpp:123` (`symbol`) — that symbol must occur within +/-40
     lines of the anchored line, so anchors rot loudly, not silently.

Run from the repository root:  python3 scripts/check_doc_drift.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC = ROOT / "docs" / "PROTOCOL.md"
ANCHOR_SLACK = 40  # lines a symbol may move before an anchor is stale


def parse_enum(path: Path, enum_name: str) -> set[str]:
    """Member names of `enum class <enum_name>` in `path`."""
    text = path.read_text()
    m = re.search(
        r"enum\s+class\s+" + enum_name + r"\b[^{]*\{(.*?)\};", text, re.S
    )
    if m is None:
        sys.exit(f"error: enum class {enum_name} not found in {path}")
    body = re.sub(r"//[^\n]*", "", m.group(1))  # strip comments
    members = set(re.findall(r"\b(k[A-Z][A-Za-z0-9]*)\b", body))
    members.discard("kCount")  # sentinel, not a real state/kind
    return members


def parse_tags() -> set[str]:
    """kTag* constants across the protocol layer."""
    tags: set[str] = set()
    for src in sorted((ROOT / "src" / "proto").glob("*.[ch]pp")):
        for line in src.read_text().splitlines():
            m = re.search(r"constexpr\s+\S+\s+(kTag[A-Za-z0-9]+)\s*=", line)
            if m:
                tags.add(m.group(1))
    return tags


def check_forward(doc_text: str, names: set[str], what: str) -> list[str]:
    return [
        f"{what} {name} is not documented in docs/PROTOCOL.md"
        for name in sorted(names)
        if re.search(r"\b" + name + r"\b", doc_text) is None
    ]


def check_reverse(doc_text: str, known: set[str]) -> list[str]:
    errors = []
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        for tok in re.findall(r"\b(k[A-Z][A-Za-z0-9]*)\b", line):
            if tok not in known:
                errors.append(
                    f"docs/PROTOCOL.md:{lineno}: {tok} does not exist in the "
                    "protocol sources (renamed or removed?)"
                )
    return errors


ANCHOR_RE = re.compile(
    r"`(src/[A-Za-z0-9_/.]+\.(?:cpp|hpp)):(\d+)`(?:\s*\(`([A-Za-z_][A-Za-z0-9_]*)`\))?"
)


def check_anchors(doc_text: str) -> list[str]:
    errors = []
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        for path_str, line_str, symbol in ANCHOR_RE.findall(line):
            target = ROOT / path_str
            if not target.is_file():
                errors.append(
                    f"docs/PROTOCOL.md:{lineno}: anchor {path_str} does not exist"
                )
                continue
            src_lines = target.read_text().splitlines()
            n = int(line_str)
            if n < 1 or n > len(src_lines):
                errors.append(
                    f"docs/PROTOCOL.md:{lineno}: anchor {path_str}:{n} is past "
                    f"the end of the file ({len(src_lines)} lines)"
                )
                continue
            if symbol:
                lo = max(0, n - 1 - ANCHOR_SLACK)
                hi = min(len(src_lines), n + ANCHOR_SLACK)
                window = "\n".join(src_lines[lo:hi])
                if re.search(r"\b" + re.escape(symbol) + r"\b", window) is None:
                    errors.append(
                        f"docs/PROTOCOL.md:{lineno}: anchor {path_str}:{n} "
                        f"names `{symbol}` but it is not within "
                        f"{ANCHOR_SLACK} lines of that location"
                    )
    return errors


def main() -> int:
    if not DOC.is_file():
        sys.exit("error: docs/PROTOCOL.md not found (run from the repo root)")
    doc_text = DOC.read_text()

    dir_states = parse_enum(ROOT / "src" / "proto" / "directory.hpp", "DirState")
    msg_kinds = parse_enum(ROOT / "src" / "mesh" / "message.hpp", "MsgKind")
    tags = parse_tags()
    known = dir_states | msg_kinds | tags

    errors = []
    errors += check_forward(doc_text, dir_states, "directory state")
    errors += check_forward(doc_text, msg_kinds, "message kind")
    errors += check_forward(doc_text, tags, "protocol tag")
    errors += check_reverse(doc_text, known)
    errors += check_anchors(doc_text)

    if errors:
        print(f"doc drift: {len(errors)} problem(s)")
        for e in errors:
            print("  " + e)
        return 1

    n_anchors = len(ANCHOR_RE.findall(doc_text))
    print(
        f"doc drift: OK ({len(dir_states)} states, {len(msg_kinds)} message "
        f"kinds, {len(tags)} tags, {n_anchors} anchors checked)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
