#!/usr/bin/env python3
"""Fail when the reference docs and the sources drift apart.

Checked docs: docs/PROTOCOL.md (protocol states/messages/tags),
docs/MODELCHECK.md (explorer + mutation hooks), docs/VERIFICATION.md
(layer map); DESIGN.md is checked for anchors only (rule 3 below).
For each, in both directions where applicable:

  1. Forward: every DirState member (src/proto/directory.hpp), MsgKind
     member (src/mesh/message.hpp), and kTag* constant (src/proto/*) must
     be mentioned in docs/PROTOCOL.md; every Mutation member
     (src/check/checker.hpp) must be mentioned in docs/MODELCHECK.md.
  2. Reverse: every `kSomething` token used in a checked doc must exist in
     the union of the code-side names — a renamed or deleted state,
     message, or mutation makes the doc reference fail here.
  3. Every `<dir>/<path>:<line>` anchor (dir in src/tools/tests/bench)
     must point at an existing file, and when the anchor names a symbol —
     the form is `src/foo.cpp:123` (`symbol`) — that symbol must occur
     within +/-40 lines of the anchored line, so anchors rot loudly, not
     silently.

Run from the repository root:  python3 scripts/check_doc_drift.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = [
    ROOT / "docs" / "PROTOCOL.md",
    ROOT / "docs" / "MODELCHECK.md",
    ROOT / "docs" / "VERIFICATION.md",
]
# Anchor-checked only (no reverse kToken check: prose docs legitimately use
# kLRC/kNever-style tokens that are not protocol states or message kinds).
ANCHOR_ONLY_DOCS = [
    ROOT / "DESIGN.md",
]
ANCHOR_SLACK = 40  # lines a symbol may move before an anchor is stale


def parse_enum(path: Path, enum_name: str) -> set[str]:
    """Member names of `enum class <enum_name>` in `path`."""
    text = path.read_text()
    m = re.search(
        r"enum\s+class\s+" + enum_name + r"\b[^{]*\{(.*?)\};", text, re.S
    )
    if m is None:
        sys.exit(f"error: enum class {enum_name} not found in {path}")
    body = re.sub(r"//[^\n]*", "", m.group(1))  # strip comments
    members = set(re.findall(r"\b(k[A-Z][A-Za-z0-9]*)\b", body))
    members.discard("kCount")  # sentinel, not a real state/kind
    return members


def parse_tags() -> set[str]:
    """kTag* constants across the protocol layer."""
    tags: set[str] = set()
    for src in sorted((ROOT / "src" / "proto").glob("*.[ch]pp")):
        for line in src.read_text().splitlines():
            m = re.search(r"constexpr\s+\S+\s+(kTag[A-Za-z0-9]+)\s*=", line)
            if m:
                tags.add(m.group(1))
    return tags


def parse_constants(path: Path) -> set[str]:
    """constexpr k* constants in one source file (e.g. Event::kNoActor)."""
    names: set[str] = set()
    for line in path.read_text().splitlines():
        m = re.search(r"constexpr\s+[^=]*?\b(k[A-Z][A-Za-z0-9]*)\s*=", line)
        if m:
            names.add(m.group(1))
    return names


def check_forward(
    doc: Path, doc_text: str, names: set[str], what: str
) -> list[str]:
    rel = doc.relative_to(ROOT)
    return [
        f"{what} {name} is not documented in {rel}"
        for name in sorted(names)
        if re.search(r"\b" + name + r"\b", doc_text) is None
    ]


def check_reverse(doc: Path, doc_text: str, known: set[str]) -> list[str]:
    rel = doc.relative_to(ROOT)
    errors = []
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        for tok in re.findall(r"\b(k[A-Z][A-Za-z0-9]*)\b", line):
            if tok not in known:
                errors.append(
                    f"{rel}:{lineno}: {tok} does not exist in the "
                    "sources (renamed or removed?)"
                )
    return errors


ANCHOR_RE = re.compile(
    r"`((?:src|tools|tests|bench)/[A-Za-z0-9_/.]+\.(?:cpp|hpp)):(\d+)`"
    r"(?:\s*\(`([A-Za-z_][A-Za-z0-9_]*)`\))?"
)


def check_anchors(doc: Path, doc_text: str) -> list[str]:
    rel = doc.relative_to(ROOT)
    errors = []
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        for path_str, line_str, symbol in ANCHOR_RE.findall(line):
            target = ROOT / path_str
            if not target.is_file():
                errors.append(
                    f"{rel}:{lineno}: anchor {path_str} does not exist"
                )
                continue
            src_lines = target.read_text().splitlines()
            n = int(line_str)
            if n < 1 or n > len(src_lines):
                errors.append(
                    f"{rel}:{lineno}: anchor {path_str}:{n} is past "
                    f"the end of the file ({len(src_lines)} lines)"
                )
                continue
            if symbol:
                lo = max(0, n - 1 - ANCHOR_SLACK)
                hi = min(len(src_lines), n + ANCHOR_SLACK)
                window = "\n".join(src_lines[lo:hi])
                if re.search(r"\b" + re.escape(symbol) + r"\b", window) is None:
                    errors.append(
                        f"{rel}:{lineno}: anchor {path_str}:{n} "
                        f"names `{symbol}` but it is not within "
                        f"{ANCHOR_SLACK} lines of that location"
                    )
    return errors


def main() -> int:
    texts = {}
    for doc in DOCS:
        if not doc.is_file():
            sys.exit(
                f"error: {doc.relative_to(ROOT)} not found "
                "(run from the repo root)"
            )
        texts[doc] = doc.read_text()

    dir_states = parse_enum(ROOT / "src" / "proto" / "directory.hpp", "DirState")
    msg_kinds = parse_enum(ROOT / "src" / "mesh" / "message.hpp", "MsgKind")
    mutations = parse_enum(ROOT / "src" / "check" / "checker.hpp", "Mutation")
    tags = parse_tags()
    event_consts = parse_constants(ROOT / "src" / "sim" / "event.hpp")
    known = dir_states | msg_kinds | mutations | tags | event_consts

    proto_doc, mc_doc, _ = DOCS
    errors = []
    errors += check_forward(proto_doc, texts[proto_doc], dir_states,
                            "directory state")
    errors += check_forward(proto_doc, texts[proto_doc], msg_kinds,
                            "message kind")
    errors += check_forward(proto_doc, texts[proto_doc], tags, "protocol tag")
    # Every deliberate mutation must be documented where the explorer's
    # catching power is claimed (kNone is the off switch, not a mutation).
    errors += check_forward(mc_doc, texts[mc_doc], mutations - {"kNone"},
                            "protocol mutation")
    for doc in DOCS:
        errors += check_reverse(doc, texts[doc], known)
        errors += check_anchors(doc, texts[doc])
    for doc in ANCHOR_ONLY_DOCS:
        if not doc.is_file():
            sys.exit(f"error: {doc.relative_to(ROOT)} not found")
        texts[doc] = doc.read_text()
        errors += check_anchors(doc, texts[doc])

    if errors:
        print(f"doc drift: {len(errors)} problem(s)")
        for e in errors:
            print("  " + e)
        return 1

    n_anchors = sum(len(ANCHOR_RE.findall(t)) for t in texts.values())
    print(
        f"doc drift: OK ({len(dir_states)} states, {len(msg_kinds)} message "
        f"kinds, {len(tags)} tags, {len(mutations) - 1} mutations, "
        f"{n_anchors} anchors checked)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
