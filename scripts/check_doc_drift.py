#!/usr/bin/env python3
"""Fail when the reference docs and the sources drift apart.

The name inventories (enum members, kTag* constants, Event::kNoActor) come
from the static protocol model (tools/proto_model.py) instead of ad-hoc
regexes, so this script and the static-analysis layer can never disagree
about what exists in the sources. The PROTOCOL.md *tables* (per-kind
"Used by" column, home-transition rows/columns) are gated separately by
`run_static_checks.py` against the same model; here we keep the cheaper
mention-level checks that cover all docs:

  1. Forward: every DirState, MsgKind, and kTag* name must be mentioned in
     docs/PROTOCOL.md; every Mutation member must be mentioned in
     docs/MODELCHECK.md.
  2. Reverse: every `kSomething` token used in a checked doc must exist in
     the union of the code-side names — a renamed or deleted state,
     message, or mutation makes the doc reference fail here.
  3. Every `<dir>/<path>:<line>` anchor (dir in src/tools/tests/bench)
     must point at an existing file. When the anchor names a symbol — the
     form is `src/foo.cpp:123` (`symbol`) — and that symbol is a function
     the model knows in that file, the anchored line must fall inside the
     function's exact [start, end] span; for symbols the model has no span
     for (members, constants, types) the +/-40-line window still applies.
     Any anchor problem exits 1.

Run from the repository root:  python3 scripts/check_doc_drift.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))
import proto_model  # noqa: E402

DOCS = [
    ROOT / "docs" / "PROTOCOL.md",
    ROOT / "docs" / "MODELCHECK.md",
    ROOT / "docs" / "VERIFICATION.md",
]
# Anchor-checked only (no reverse kToken check: prose docs legitimately use
# kLRC/kNever-style tokens that are not protocol states or message kinds).
ANCHOR_ONLY_DOCS = [
    ROOT / "DESIGN.md",
]
ANCHOR_SLACK = 40  # window for symbols without a model-known span


def check_forward(
    doc: Path, doc_text: str, names: set[str], what: str
) -> list[str]:
    rel = doc.relative_to(ROOT)
    return [
        f"{what} {name} is not documented in {rel}"
        for name in sorted(names)
        if re.search(r"\b" + name + r"\b", doc_text) is None
    ]


def check_reverse(doc: Path, doc_text: str, known: set[str]) -> list[str]:
    rel = doc.relative_to(ROOT)
    errors = []
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        for tok in re.findall(r"\b(k[A-Z][A-Za-z0-9]*)\b", line):
            if tok not in known:
                errors.append(
                    f"{rel}:{lineno}: {tok} does not exist in the "
                    "sources (renamed or removed?)"
                )
    return errors


ANCHOR_RE = re.compile(
    r"`((?:src|tools|tests|bench)/[A-Za-z0-9_/.]+\.(?:cpp|hpp)):(\d+)`"
    r"(?:\s*\(`([A-Za-z_][A-Za-z0-9_]*)`\))?"
)


def function_spans(model_json: dict) -> dict[tuple[str, str], list[tuple[int, int]]]:
    """(file, unqualified name) -> [(start, end), ...] from the model."""
    spans: dict[tuple[str, str], list[tuple[int, int]]] = {}
    for qualname, loc in model_json["functions"].items():
        leaf = qualname.rsplit("::", 1)[-1]
        spans.setdefault((loc["file"], leaf), []).append(
            (loc["start"], loc["end"])
        )
    return spans


def check_anchors(
    doc: Path,
    doc_text: str,
    spans: dict[tuple[str, str], list[tuple[int, int]]],
) -> list[str]:
    rel = doc.relative_to(ROOT)
    errors = []
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        for path_str, line_str, symbol in ANCHOR_RE.findall(line):
            target = ROOT / path_str
            if not target.is_file():
                errors.append(
                    f"{rel}:{lineno}: anchor {path_str} does not exist"
                )
                continue
            src_lines = target.read_text().splitlines()
            n = int(line_str)
            if n < 1 or n > len(src_lines):
                errors.append(
                    f"{rel}:{lineno}: anchor {path_str}:{n} is past "
                    f"the end of the file ({len(src_lines)} lines)"
                )
                continue
            if not symbol:
                continue
            known_spans = spans.get((path_str, symbol))
            if known_spans:
                if not any(lo <= n <= hi for lo, hi in known_spans):
                    where = ", ".join(f"{lo}-{hi}" for lo, hi in known_spans)
                    errors.append(
                        f"{rel}:{lineno}: anchor {path_str}:{n} names "
                        f"`{symbol}` but that function spans line(s) "
                        f"{where}"
                    )
                continue
            lo = max(0, n - 1 - ANCHOR_SLACK)
            hi = min(len(src_lines), n + ANCHOR_SLACK)
            window = "\n".join(src_lines[lo:hi])
            if re.search(r"\b" + re.escape(symbol) + r"\b", window) is None:
                errors.append(
                    f"{rel}:{lineno}: anchor {path_str}:{n} "
                    f"names `{symbol}` but it is not within "
                    f"{ANCHOR_SLACK} lines of that location"
                )
    return errors


def main() -> int:
    texts = {}
    for doc in DOCS:
        if not doc.is_file():
            sys.exit(
                f"error: {doc.relative_to(ROOT)} not found "
                "(run from the repo root)"
            )
        texts[doc] = doc.read_text()

    model_json, findings = proto_model.build_protocol_model(ROOT, "tokens")
    gating = proto_model.gating(findings)
    if gating:
        # Anchor/inventory checks against a broken model would lie; make
        # the extraction failure itself the reported drift.
        print(f"doc drift: protocol model has {len(gating)} gating finding(s)")
        for f in gating:
            print(f"  [{f['rule']}] {f['msg']}")
        return 1

    enums = {k: set(v) - {"kCount"} for k, v in model_json["enums"].items()}
    dir_states = enums["DirState"]
    msg_kinds = enums["MsgKind"]
    mutations = enums["Mutation"]
    tags = set(model_json["tags"])
    consts = set(model_json["consts"])
    known = dir_states | msg_kinds | mutations | tags | consts
    spans = function_spans(model_json)

    proto_doc, mc_doc, _ = DOCS
    errors = []
    errors += check_forward(proto_doc, texts[proto_doc], dir_states,
                            "directory state")
    errors += check_forward(proto_doc, texts[proto_doc], msg_kinds,
                            "message kind")
    errors += check_forward(proto_doc, texts[proto_doc], tags, "protocol tag")
    # Every deliberate mutation must be documented where the explorer's
    # catching power is claimed (kNone is the off switch, not a mutation).
    errors += check_forward(mc_doc, texts[mc_doc], mutations - {"kNone"},
                            "protocol mutation")
    for doc in DOCS:
        errors += check_reverse(doc, texts[doc], known)
        errors += check_anchors(doc, texts[doc], spans)
    for doc in ANCHOR_ONLY_DOCS:
        if not doc.is_file():
            sys.exit(f"error: {doc.relative_to(ROOT)} not found")
        texts[doc] = doc.read_text()
        errors += check_anchors(doc, texts[doc], spans)

    if errors:
        print(f"doc drift: {len(errors)} problem(s)")
        for e in errors:
            print("  " + e)
        return 1

    n_anchors = sum(len(ANCHOR_RE.findall(t)) for t in texts.values())
    print(
        f"doc drift: OK ({len(dir_states)} states, {len(msg_kinds)} message "
        f"kinds, {len(tags)} tags, {len(mutations) - 1} mutations, "
        f"{n_anchors} anchors checked)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
