#!/usr/bin/env bash
# Reproduces every paper artifact and ablation end-to-end:
# build, run the full test suite, then every benchmark binary.
#
#   scripts/reproduce.sh            # bench scale (default, minutes)
#   scripts/reproduce.sh --quick    # smoke scale (seconds)
#   scripts/reproduce.sh --paper-scale   # original inputs (hours)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ARGS=("$@")

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Optional: the Debug build enables the protocols' internal assertions.
if [[ "${LRCSIM_DEBUG_SWEEP:-0}" == "1" ]]; then
  cmake -B build-debug -G Ninja -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-debug
  ctest --test-dir build-debug
fi

{
  for b in build/bench/*; do
    [[ -f "$b" && -x "$b" ]] || continue
    echo "===== $(basename "$b") ====="
    if [[ "$(basename "$b")" == micro_substrate ]]; then
      "$b"   # google-benchmark flags differ; always run as-is
    else
      "$b" "${SCALE_ARGS[@]}"
    fi
    echo
  done
} 2>&1 | tee bench_output.txt

echo "Done. See test_output.txt and bench_output.txt; compare the tables"
echo "against EXPERIMENTS.md."
